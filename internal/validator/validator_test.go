package validator

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"hyfd/internal/bitset"
	"hyfd/internal/fd"
	"hyfd/internal/fdtree"
	"hyfd/internal/inductor"
	"hyfd/internal/pli"
	"hyfd/internal/relation"
	"hyfd/internal/trace"
)

// run executes one validation run under a background context.
func run(tb testing.TB, v *Validator, exhaustive bool) *Result {
	tb.Helper()
	res, err := v.Run(context.Background(), exhaustive)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func buildRel(rows [][]string, cols []string) *relation.Relation {
	rel := relation.New("t", cols)
	for _, r := range rows {
		rel.AppendRow(r)
	}
	return rel
}

func randomRelation(r *rand.Rand, rows, cols, domain int) *relation.Relation {
	names := make([]string, cols)
	for i := range names {
		names[i] = "c" + strconv.Itoa(i)
	}
	rel := relation.New("rnd", names)
	for i := 0; i < rows; i++ {
		row := make([]string, cols)
		for j := range row {
			row[j] = strconv.Itoa(r.Intn(domain))
		}
		rel.AppendRow(row)
	}
	return rel
}

// runExhaustive validates a seeded candidate tree to completion.
func runExhaustive(t *testing.T, rel *relation.Relation, threads int) *fd.Set {
	t.Helper()
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	ind := inductor.New(rel.NumCols())
	v := New(ix, ind.Tree(), WithThreads(threads))
	res := run(t, v, true)
	if !res.Done {
		t.Fatal("exhaustive run did not finish")
	}
	return ind.Tree().FDs()
}

// TestValidatorAloneEqualsBruteForce: Phase 2 starting from the most
// general candidates ∅→A must discover everything by itself (the paper
// notes each phase can run standalone).
func TestValidatorAloneEqualsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		rel := randomRelation(r, 5+r.Intn(40), 2+r.Intn(4), 1+r.Intn(4))
		got := runExhaustive(t, rel, 1)
		want := fd.BruteForce(rel, relation.NullEqualsNull)
		if !got.Equal(want) {
			t.Fatalf("trial %d:\nmissing: %v\nextra: %v", trial, want.Diff(got), got.Diff(want))
		}
	}
}

func TestValidatorParallelEqualsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		rel := randomRelation(r, 40, 5, 3)
		if !runExhaustive(t, rel, 1).Equal(runExhaustive(t, rel, 8)) {
			t.Fatalf("trial %d: parallel validation diverged", trial)
		}
	}
}

func TestRefinesDirectCheck(t *testing.T) {
	// Room is determined by Teacher; Subject is not.
	rel := buildRel([][]string{
		{"Brown", "Math", "R1"},
		{"Walker", "Math", "R2"},
		{"Brown", "English", "R1"},
		{"Miller", "English", "R3"},
		{"Brown", "Math", "R1"},
	}, []string{"Teacher", "Subject", "Room"})
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	ck := newChecker(ix)
	valid, suggestions := ck.refines(bitset.FromIndices(3, 0), bitset.FromIndices(3, 1, 2))
	if !valid.Test(2) {
		t.Fatal("Teacher → Room rejected")
	}
	if valid.Test(1) {
		t.Fatal("Teacher → Subject accepted")
	}
	if len(suggestions) == 0 {
		t.Fatal("no violation witness returned")
	}
	// The witness pair must actually violate Teacher → Subject.
	for _, p := range suggestions {
		if rel.Rows[p.A][0] != rel.Rows[p.B][0] {
			t.Fatalf("suggestion (%d,%d) does not agree on Teacher", p.A, p.B)
		}
	}
}

func TestRefinesEmptyLhs(t *testing.T) {
	rel := buildRel([][]string{
		{"c", "1"}, {"c", "2"}, {"c", "1"},
	}, []string{"A", "B"})
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	ck := newChecker(ix)
	valid, suggestions := ck.refines(bitset.New(2), bitset.FromIndices(2, 0, 1))
	if !valid.Test(0) {
		t.Fatal("∅ → A rejected for constant A")
	}
	if valid.Test(1) {
		t.Fatal("∅ → B accepted for non-constant B")
	}
	if len(suggestions) != 1 {
		t.Fatalf("suggestions = %v", suggestions)
	}
	p := suggestions[0]
	if rel.Rows[p.A][1] == rel.Rows[p.B][1] {
		t.Fatal("∅-violation witness agrees on B")
	}
}

// TestQuickRefinesMatchesHolds: the direct refinement check must agree with
// the definitional FD check on random relations and random candidates.
func TestQuickRefinesMatchesHolds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randomRelation(r, 1+r.Intn(40), 2+r.Intn(5), 1+r.Intn(4))
		ix := pli.NewIndex(rel, relation.NullEqualsNull)
		ck := newChecker(ix)
		m := rel.NumCols()
		for trial := 0; trial < 10; trial++ {
			lhs := bitset.New(m)
			for a := 0; a < m; a++ {
				if r.Intn(3) == 0 {
					lhs.Set(a)
				}
			}
			rhss := lhs.Flip()
			if rhss.IsEmpty() {
				continue
			}
			valid, _ := ck.refines(lhs, rhss)
			ok := true
			rhss.ForEach(func(rhs int) bool {
				if valid.Test(rhs) != fd.Holds(rel, relation.NullEqualsNull, lhs, rhs) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseSwitchReturnsSuggestions(t *testing.T) {
	// Candidates seeded at ∅ on a relation with no valid FDs at low levels
	// force a quick switch with a tight threshold.
	r := rand.New(rand.NewSource(17))
	rel := randomRelation(r, 60, 5, 2)
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	ind := inductor.New(rel.NumCols())
	v := New(ix, ind.Tree(), WithInvalidThreshold(0.01))
	res := run(t, v, false)
	if res.Done {
		t.Skip("relation validated in one go; no switch to observe")
	}
	if len(res.Suggestions) == 0 {
		t.Fatal("switch without suggestions")
	}
	if res.InvalidFds == 0 {
		t.Fatal("switch without invalid candidates")
	}
	// Every suggestion must be a genuine record pair.
	for _, p := range res.Suggestions {
		if p.A == p.B || int(p.A) >= rel.NumRows() || int(p.B) >= rel.NumRows() {
			t.Fatalf("bogus suggestion %+v", p)
		}
	}
	// Resuming exhaustively must finish the job correctly.
	res2 := run(t, v, true)
	if !res2.Done {
		t.Fatal("resumed run did not finish")
	}
	got := ind.Tree().FDs()
	want := fd.BruteForce(rel, relation.NullEqualsNull)
	if !got.Equal(want) {
		t.Fatalf("after resume:\nmissing: %v\nextra: %v", want.Diff(got), got.Diff(want))
	}
}

func TestValidatorRespectsMaxLhs(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	rel := randomRelation(r, 25, 7, 2)
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	ind := inductor.New(rel.NumCols())
	ind.Tree().SetMaxLhs(2)
	v := New(ix, ind.Tree(), WithThreads(1))
	if !run(t, v, true).Done {
		t.Fatal("bounded run did not finish")
	}
	for _, f := range ind.Tree().FDs().All() {
		if f.Lhs.Cardinality() > 2 {
			t.Fatalf("FD %v exceeds bound", f)
		}
		if !fd.Holds(rel, relation.NullEqualsNull, f.Lhs, f.Rhs) {
			t.Fatalf("invalid FD %v", f)
		}
	}
}

func TestValidatorOnEmptyTreeLevels(t *testing.T) {
	// A tree whose candidates were all eliminated: Run must terminate
	// immediately and report Done.
	rel := buildRel([][]string{{"1"}, {"2"}}, []string{"A"})
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	tree := fdtree.New(1)
	tree.Remove(bitset.New(1), 0) // no-op; tree empty
	v := New(ix, tree)
	res := run(t, v, false)
	if !res.Done || res.ValidFds != 0 {
		t.Fatalf("res = %+v", res)
	}
}

// TestIntersectionValidationMatchesDirect: the ablation checker must agree
// with the direct refinement checks and with brute force.
func TestIntersectionValidationMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		rel := randomRelation(r, 5+r.Intn(40), 2+r.Intn(4), 1+r.Intn(4))
		ix := pli.NewIndex(rel, relation.NullEqualsNull)
		ind := inductor.New(rel.NumCols())
		v := New(ix, ind.Tree(), WithIntersectionValidation())
		if !run(t, v, true).Done {
			t.Fatal("intersection run did not finish")
		}
		got := ind.Tree().FDs()
		want := fd.BruteForce(rel, relation.NullEqualsNull)
		if !got.Equal(want) {
			t.Fatalf("trial %d:\nmissing: %v\nextra: %v", trial, want.Diff(got), got.Diff(want))
		}
	}
}

// TestIntersectionSuggestionsAreViolations: witnesses extracted from
// partitions must actually violate some candidate.
func TestIntersectionSuggestionsAreViolations(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	rel := randomRelation(r, 50, 5, 2)
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	ind := inductor.New(rel.NumCols())
	v := New(ix, ind.Tree(), WithIntersectionValidation(), WithInvalidThreshold(0.001))
	res := run(t, v, false)
	for _, p := range res.Suggestions {
		if p.A == p.B || int(p.A) >= rel.NumRows() || int(p.B) >= rel.NumRows() {
			t.Fatalf("bogus suggestion %+v", p)
		}
	}
}

func TestRunCanceledContext(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	rel := randomRelation(r, 60, 6, 2)
	for _, threads := range []int{1, 4} {
		ix := pli.NewIndex(rel, relation.NullEqualsNull)
		ind := inductor.New(rel.NumCols())
		v := New(ix, ind.Tree(), WithThreads(threads))
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := v.Run(ctx, true); !errors.Is(err, context.Canceled) {
			t.Fatalf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
	}
}

func TestRunEmitsValidationLevelEvents(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	rel := randomRelation(r, 30, 4, 2)
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	ind := inductor.New(rel.NumCols())
	col := &trace.Collector{}
	v := New(ix, ind.Tree(), WithObserver(col))
	if !run(t, v, true).Done {
		t.Fatal("run did not finish")
	}
	events := col.Events()
	if len(events) == 0 {
		t.Fatal("no ValidationLevel events emitted")
	}
	prev := -1
	for _, e := range events {
		lv, ok := e.(trace.ValidationLevel)
		if !ok {
			t.Fatalf("unexpected event %#v", e)
		}
		if lv.Level <= prev {
			t.Fatalf("levels out of order: %d after %d", lv.Level, prev)
		}
		if lv.Candidates != lv.Valid+lv.Invalid {
			t.Fatalf("candidate partition broken: %+v", lv)
		}
		prev = lv.Level
	}
}

func BenchmarkValidatorExhaustive(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	rel := randomRelation(r, 1000, 8, 4)
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ind := inductor.New(rel.NumCols())
		v := New(ix, ind.Tree())
		if !run(b, v, true).Done {
			b.Fatal("did not finish")
		}
	}
}

func BenchmarkRefines(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	rel := randomRelation(r, 5000, 10, 8)
	ix := pli.NewIndex(rel, relation.NullEqualsNull)
	ck := newChecker(ix)
	lhs := bitset.FromIndices(10, 1, 3, 5)
	rhss := lhs.Flip()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck.refines(lhs, rhss)
	}
}
