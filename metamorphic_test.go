package hyfd_test

import (
	"context"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"hyfd"
	"hyfd/internal/fd"
	"hyfd/internal/rank"
)

// Metamorphic properties of FD discovery: the discovered dependency set is
// a function of the relation's *content*, so transformations that preserve
// the content semantics must preserve the result. Each property is checked
// for HyFD and two structurally different baselines (lattice-traversing
// TANE, negative-cover-based FDEP) under both null semantics.

// metamorphicAlgorithms are the implementations the properties run against.
var metamorphicAlgorithms = []string{hyfd.AlgorithmHyFD, hyfd.AlgorithmTane, hyfd.AlgorithmFdep}

// metamorphicRelation builds a small mixed relation: a key-ish column, a
// constant column, correlated categorical columns, and sprinkled nulls —
// enough structure that the FD set is non-trivial in both directions.
func metamorphicRelation(rows int, seed int64) *hyfd.Relation {
	r := rand.New(rand.NewSource(seed))
	rel := hyfd.NewRelation("meta", []string{"id", "const", "cat", "dep", "noise"})
	for i := 0; i < rows; i++ {
		cat := r.Intn(4)
		row := []string{
			strconv.Itoa(i % (rows - 2)), // near-unique
			"k",
			strconv.Itoa(cat),
			strconv.Itoa(cat * 2), // functionally determined by cat
			strconv.Itoa(r.Intn(3)),
		}
		if r.Intn(8) == 0 {
			row[4] = hyfd.Null
		}
		rel.AppendRow(row)
	}
	return rel
}

// discoverSet runs one algorithm and returns its FD set, failing the test
// on error.
func discoverSet(t *testing.T, alg string, rel *hyfd.Relation, ns hyfd.NullSemantics) *hyfd.FDSet {
	t.Helper()
	res, err := hyfd.DiscoverWith(alg, rel, hyfd.Options{NullSemantics: ns, Threads: 1})
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	return res.Set
}

// forEachCase runs fn for every algorithm × null-semantics combination.
func forEachCase(t *testing.T, fn func(t *testing.T, alg string, ns hyfd.NullSemantics)) {
	for _, alg := range metamorphicAlgorithms {
		for _, ns := range []hyfd.NullSemantics{hyfd.NullEqualsNull, hyfd.NullNotEqualsNull} {
			alg, ns := alg, ns
			name := alg + "/ns=" + strconv.Itoa(int(ns))
			t.Run(name, func(t *testing.T) { fn(t, alg, ns) })
		}
	}
}

// TestMetamorphicRowShuffleInvariance: FDs are defined over record *pairs*,
// so permuting the rows must not change the discovered set.
func TestMetamorphicRowShuffleInvariance(t *testing.T) {
	rel := metamorphicRelation(60, 101)
	shuffled := hyfd.NewRelation(rel.Name, rel.Columns)
	perm := rand.New(rand.NewSource(202)).Perm(rel.NumRows())
	for _, i := range perm {
		shuffled.AppendRow(rel.Rows[i])
	}
	forEachCase(t, func(t *testing.T, alg string, ns hyfd.NullSemantics) {
		base := discoverSet(t, alg, rel, ns)
		got := discoverSet(t, alg, shuffled, ns)
		if !got.Equal(base) {
			t.Fatalf("row shuffle changed the FD set:\nmissing: %v\nextra: %v",
				base.Diff(got), got.Diff(base))
		}
	})
}

// TestMetamorphicRowDuplicationInvariance: duplicating existing rows adds
// only reflexive pairs and pairs equivalent to existing ones, so the FD set
// must not change.
func TestMetamorphicRowDuplicationInvariance(t *testing.T) {
	rel := metamorphicRelation(50, 303)
	dup := hyfd.NewRelation(rel.Name, rel.Columns)
	r := rand.New(rand.NewSource(404))
	for _, row := range rel.Rows {
		dup.AppendRow(row)
		if r.Intn(3) == 0 {
			dup.AppendRow(row)
		}
	}
	dup.AppendRow(rel.Rows[0]) // and one guaranteed duplicate
	forEachCase(t, func(t *testing.T, alg string, ns hyfd.NullSemantics) {
		base := discoverSet(t, alg, rel, ns)
		got := discoverSet(t, alg, dup, ns)
		if !got.Equal(base) {
			t.Fatalf("row duplication changed the FD set:\nmissing: %v\nextra: %v",
				base.Diff(got), got.Diff(base))
		}
	})
}

// TestMetamorphicColumnPermutationConsistency: permuting the columns must
// permute the discovered FDs' attribute indices and nothing else.
func TestMetamorphicColumnPermutationConsistency(t *testing.T) {
	rel := metamorphicRelation(60, 505)
	// perm[old] = new attribute position.
	perm := rand.New(rand.NewSource(606)).Perm(rel.NumCols())
	cols := make([]string, rel.NumCols())
	for old, new_ := range perm {
		cols[new_] = rel.Columns[old]
	}
	permuted := hyfd.NewRelation(rel.Name, cols)
	for _, row := range rel.Rows {
		prow := make([]string, len(row))
		for old, new_ := range perm {
			prow[new_] = row[old]
		}
		permuted.AppendRow(prow)
	}
	forEachCase(t, func(t *testing.T, alg string, ns hyfd.NullSemantics) {
		base := discoverSet(t, alg, rel, ns)
		// Map the base set through the permutation.
		want := fd.NewSet(rel.NumCols())
		for _, f := range base.All() {
			lhs := hyfd.NewAttrSet(rel.NumCols())
			f.Lhs.ForEach(func(a int) bool {
				lhs.Set(perm[a])
				return true
			})
			want.Add(hyfd.FD{Lhs: lhs, Rhs: perm[f.Rhs]})
		}
		got := discoverSet(t, alg, permuted, ns)
		if !got.Equal(want) {
			t.Fatalf("column permutation inconsistent:\nmissing: %v\nextra: %v",
				want.Diff(got), got.Diff(want))
		}
	})
}

// --- ranked top-k metamorphic properties ---
//
// The ranked mode's score is a function of the per-attribute
// equivalence-class counts, so content-preserving transformations must
// preserve the ranked list exactly — same FDs, same scores, same order.

// rankedList runs a ranked discovery and returns its result list.
func rankedList(t *testing.T, rel *hyfd.Relation, ns hyfd.NullSemantics, k int) []hyfd.RankedFD {
	t.Helper()
	res, err := hyfd.Run(context.Background(), hyfd.Request{
		Relation: rel,
		Mode:     hyfd.ModeRanked,
		TopK:     k,
		Options:  hyfd.Options{NullSemantics: ns, Threads: 1},
	})
	if err != nil {
		t.Fatalf("ranked k=%d: %v", k, err)
	}
	return res.Ranked
}

// requireSameRanking fails unless the two ranked lists agree entry by entry
// on rank, score, and FD.
func requireSameRanking(t *testing.T, got, want []hyfd.RankedFD, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ranked results, want %d\ngot: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Rank != w.Rank || g.Score != w.Score || g.FD.Rhs != w.FD.Rhs || !g.FD.Lhs.Equal(w.FD.Lhs) {
			t.Fatalf("%s: rank %d differs:\ngot:  %+v\nwant: %+v", label, i+1, g, w)
		}
	}
}

// forEachNullSemantics runs fn under both null semantics.
func forEachNullSemantics(t *testing.T, fn func(t *testing.T, ns hyfd.NullSemantics)) {
	for _, ns := range []hyfd.NullSemantics{hyfd.NullEqualsNull, hyfd.NullNotEqualsNull} {
		ns := ns
		t.Run("ns="+strconv.Itoa(int(ns)), func(t *testing.T) { fn(t, ns) })
	}
}

// TestMetamorphicRankedRowShuffleInvariance: scores depend on equivalence
// classes, never on row order, so permuting the rows must leave the ranked
// list — entries, scores, and order — unchanged.
func TestMetamorphicRankedRowShuffleInvariance(t *testing.T) {
	rel := metamorphicRelation(60, 101)
	shuffled := hyfd.NewRelation(rel.Name, rel.Columns)
	perm := rand.New(rand.NewSource(202)).Perm(rel.NumRows())
	for _, i := range perm {
		shuffled.AppendRow(rel.Rows[i])
	}
	forEachNullSemantics(t, func(t *testing.T, ns hyfd.NullSemantics) {
		for _, k := range []int{5, 0} {
			requireSameRanking(t, rankedList(t, shuffled, ns, k), rankedList(t, rel, ns, k),
				"row shuffle k="+strconv.Itoa(k))
		}
	})
}

// TestMetamorphicRankedRowDuplicationInvariance: duplicating rows of a
// null-free relation preserves both the FD set and every attribute's
// distinct-value count, so the ranked list must not change. Null-free is
// essential: under ⊥≠⊥ a duplicated null is a *fresh* equivalence class, so
// duplication legitimately changes scores (and can invalidate FDs) there.
func TestMetamorphicRankedRowDuplicationInvariance(t *testing.T) {
	rel := metamorphicRelation(50, 303)
	for _, row := range rel.Rows {
		if row[4] == hyfd.Null {
			row[4] = "nn" // strip nulls: see the doc comment
		}
	}
	dup := hyfd.NewRelation(rel.Name, rel.Columns)
	r := rand.New(rand.NewSource(404))
	for _, row := range rel.Rows {
		dup.AppendRow(row)
		if r.Intn(3) == 0 {
			dup.AppendRow(row)
		}
	}
	dup.AppendRow(rel.Rows[0]) // and one guaranteed duplicate
	forEachNullSemantics(t, func(t *testing.T, ns hyfd.NullSemantics) {
		for _, k := range []int{5, 0} {
			requireSameRanking(t, rankedList(t, dup, ns, k), rankedList(t, rel, ns, k),
				"row duplication k="+strconv.Itoa(k))
		}
	})
}

// --- incremental maintenance metamorphic properties ---
//
// The maintained cover is a function of the snapshot's *content*: any two
// delta sequences leading to the same row multiset must maintain
// byte-identical covers.

// maintainChain applies the deltas in order through ModeIncremental, starting
// from a cold Prepare + Discover of rel, and returns the final maintained
// cover.
func maintainChain(t *testing.T, rel *hyfd.Relation, deltas []hyfd.Delta, ns hyfd.NullSemantics, threads int) *hyfd.FDSet {
	t.Helper()
	ctx := context.Background()
	ds, err := hyfd.Prepare(ctx, rel, hyfd.PrepareOptions{NullSemantics: ns, Threads: threads})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	base, err := hyfd.Discover(rel, hyfd.Options{NullSemantics: ns, Threads: threads})
	if err != nil {
		t.Fatalf("base discover: %v", err)
	}
	set := base.Set
	for i := range deltas {
		res, err := hyfd.Run(ctx, hyfd.Request{
			Dataset: ds,
			Mode:    hyfd.ModeIncremental,
			Delta:   &deltas[i],
			Base:    set,
			Options: hyfd.Options{NullSemantics: ns, Threads: threads},
		})
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		ds, set = res.Dataset, res.Set
	}
	return set
}

// metamorphicInsertRows fabricates arity-5 rows shaped like
// metamorphicRelation's, with values outside the base's id range so the
// batch genuinely perturbs the near-unique column.
func metamorphicInsertRows(n int, seed int64) []hyfd.Row {
	r := rand.New(rand.NewSource(seed))
	rows := make([]hyfd.Row, 0, n)
	for i := 0; i < n; i++ {
		cat := r.Intn(4)
		rows = append(rows, hyfd.Row{
			"x" + strconv.Itoa(i), "k", strconv.Itoa(cat), strconv.Itoa(cat * 2), strconv.Itoa(r.Intn(3)),
		})
	}
	return rows
}

// TestMetamorphicIncrementalRoundTrip: inserting a batch and then deleting
// the same rows (by value) restores the snapshot's row multiset, so the
// maintained cover must come back byte-identical to the base cover.
func TestMetamorphicIncrementalRoundTrip(t *testing.T) {
	rel := metamorphicRelation(50, 707)
	ins := metamorphicInsertRows(6, 808)
	forEachNullSemantics(t, func(t *testing.T, ns hyfd.NullSemantics) {
		base, err := hyfd.Discover(rel, hyfd.Options{NullSemantics: ns, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{1, 4} {
			got := maintainChain(t, rel, []hyfd.Delta{
				{Inserts: ins},
				{Deletes: ins},
			}, ns, threads)
			if got.String() != base.Set.String() {
				t.Fatalf("threads=%d: insert-then-delete round trip changed the cover:\nmissing: %v\nextra: %v",
					threads, base.Set.Diff(got), got.Diff(base.Set))
			}
		}
	})
}

// TestMetamorphicIncrementalBatchOrderInvariance: one combined batch, two
// single-row batches, and the same two batches in reverse order all reach the
// same row multiset, so the maintained covers must be byte-identical — and
// identical to a cold discovery over the final content.
func TestMetamorphicIncrementalBatchOrderInvariance(t *testing.T) {
	rel := metamorphicRelation(50, 909)
	ins := metamorphicInsertRows(4, 1010)
	a, b := ins[:2], ins[2:]
	final := hyfd.NewRelation(rel.Name, rel.Columns)
	for _, row := range rel.Rows {
		final.AppendRow(row)
	}
	for _, row := range ins {
		final.AppendRow(row)
	}
	forEachNullSemantics(t, func(t *testing.T, ns hyfd.NullSemantics) {
		cold, err := hyfd.Discover(final, hyfd.Options{NullSemantics: ns, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		batchings := [][]hyfd.Delta{
			{{Inserts: ins}},
			{{Inserts: a}, {Inserts: b}},
			{{Inserts: b}, {Inserts: a}},
		}
		for i, deltas := range batchings {
			got := maintainChain(t, rel, deltas, ns, 1)
			if got.String() != cold.Set.String() {
				t.Fatalf("batching %d diverges from cold discovery over the final content:\nmissing: %v\nextra: %v",
					i, cold.Set.Diff(got), got.Diff(cold.Set))
			}
		}
	})
}

// TestMetamorphicRankedColumnPermutationConsistency: permuting columns
// relabels attributes, so the ranked result must be the base result mapped
// through the permutation and re-sorted — scores are index-free, but the
// deterministic tie-break (Rhs, LHS key) follows the new labels. The full
// ranking (k=0) is compared so a tie crossing the k boundary cannot make
// the prefixes legitimately diverge.
func TestMetamorphicRankedColumnPermutationConsistency(t *testing.T) {
	rel := metamorphicRelation(60, 505)
	// perm[old] = new attribute position.
	perm := rand.New(rand.NewSource(606)).Perm(rel.NumCols())
	cols := make([]string, rel.NumCols())
	for old, new_ := range perm {
		cols[new_] = rel.Columns[old]
	}
	permuted := hyfd.NewRelation(rel.Name, cols)
	for _, row := range rel.Rows {
		prow := make([]string, len(row))
		for old, new_ := range perm {
			prow[new_] = row[old]
		}
		permuted.AppendRow(prow)
	}
	forEachNullSemantics(t, func(t *testing.T, ns hyfd.NullSemantics) {
		base := rankedList(t, rel, ns, 0)
		want := make([]hyfd.RankedFD, 0, len(base))
		for _, e := range base {
			lhs := hyfd.NewAttrSet(rel.NumCols())
			e.FD.Lhs.ForEach(func(a int) bool {
				lhs.Set(perm[a])
				return true
			})
			want = append(want, hyfd.RankedFD{FD: hyfd.FD{Lhs: lhs, Rhs: perm[e.FD.Rhs]}, Score: e.Score})
		}
		sort.Slice(want, func(i, j int) bool { return rank.Less(want[i], want[j]) })
		for i := range want {
			want[i].Rank = i + 1
		}
		requireSameRanking(t, rankedList(t, permuted, ns, 0), want, "column permutation")
	})
}
