package hyfd

import "hyfd/internal/metrics"

// MetricsRegistry aggregates the engine's quantitative telemetry. Pass one
// via Options.Metrics to meter a discovery run; several runs may share a
// registry, in which case counters and histograms accumulate across them.
// The registry serves itself over HTTP (metrics.Handler, metrics.JSONHandler
// — or the hyfd CLI's -metrics-addr flag), writes Prometheus text exposition
// via WritePrometheus, and snapshots to stable JSON via Snapshot.
//
// All instrument methods are safe for concurrent use; a nil registry in
// Options.Metrics keeps discovery completely unmetered.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time, JSON-marshalable copy of a registry's
// state; see MetricsRegistry.Snapshot.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry {
	return metrics.NewRegistry()
}
