package hyfd_test

import (
	"strings"
	"testing"

	"hyfd"
)

// TestMetricsPublicAPI meters a run through the public surface and checks
// both exposition formats work end to end.
func TestMetricsPublicAPI(t *testing.T) {
	rel, err := hyfd.ReadCSV("class", strings.NewReader(classCSV()), hyfd.CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := hyfd.NewMetricsRegistry()
	res, err := hyfd.Discover(rel, hyfd.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if runs, ok := snap.Counter("hyfd_runs_total"); !ok || runs != 1 {
		t.Fatalf("hyfd_runs_total = %d, %v", runs, ok)
	}
	if fds, ok := snap.Gauge("hyfd_fds_discovered"); !ok || int(fds) != len(res.FDs) {
		t.Fatalf("hyfd_fds_discovered = %g, want %d", fds, len(res.FDs))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE hyfd_comparisons_total counter") {
		t.Fatalf("exposition missing comparisons family:\n%s", sb.String())
	}
}

// TestBaselineStatsHaveTotalTime pins the DiscoverWith timing fix: baseline
// runs must report wall-clock TotalTime even though they produce no trace
// events.
func TestBaselineStatsHaveTotalTime(t *testing.T) {
	rel, err := hyfd.ReadCSV("class", strings.NewReader(classCSV()), hyfd.CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range hyfd.Algorithms() {
		res, err := hyfd.DiscoverWith(name, rel, hyfd.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.TotalTime <= 0 {
			t.Errorf("%s: TotalTime = %v, want > 0", name, res.Stats.TotalTime)
		}
	}
}
