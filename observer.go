package hyfd

import (
	"hyfd/internal/trace"
)

// Observability: a discovery run reports its progress through an Observer
// carried in Options. Events are delivered synchronously from the engine's
// coordinating goroutine — an Observer never needs internal locking against
// the engine, and a slow Observer slows discovery down. The types below
// re-export the engine's event vocabulary so callers subscribe without
// importing internal packages.

// Observer receives trace events during a discovery run.
type Observer = trace.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = trace.ObserverFunc

// Event is the common interface of all trace events.
type Event = trace.Event

// Phase identifies one of HyFD's two alternating phases.
type Phase = trace.Phase

// The two phases of the hybrid loop.
const (
	PhaseSampling   = trace.PhaseSampling
	PhaseValidation = trace.PhaseValidation
)

// The event vocabulary; see the trace package for field documentation.
type (
	// IngestDone reports a relation parsed from external input; it is
	// emitted by loading layers (e.g. the CLI), not the engine itself.
	IngestDone = trace.IngestDone
	// PLIBuilt reports the construction of one attribute's PLI.
	PLIBuilt = trace.PLIBuilt
	// PreprocessingDone marks the end of PLI and compressed-record
	// construction.
	PreprocessingDone = trace.PreprocessingDone
	// SamplingRound reports one Phase 1 sampling + induction round.
	SamplingRound = trace.SamplingRound
	// PhaseSwitch reports a hand-over between the two phases.
	PhaseSwitch = trace.PhaseSwitch
	// ValidationLevel reports one Phase 2 lattice level.
	ValidationLevel = trace.ValidationLevel
	// GuardianPrune reports a memory-Guardian intervention.
	GuardianPrune = trace.GuardianPrune
	// RankedResult reports one ranked-mode FD the moment its final rank
	// stabilized — the any-time result stream of ModeRanked runs.
	RankedResult = trace.RankedResult
	// Done marks the end of a discovery run.
	Done = trace.Done
)

// MultiObserver fans events out to several observers in order.
func MultiObserver(os ...Observer) Observer { return trace.Multi(os...) }
