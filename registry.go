package hyfd

import (
	"sort"

	"hyfd/internal/algorithms"
	"hyfd/internal/algorithms/depminer"
	"hyfd/internal/algorithms/dfd"
	"hyfd/internal/algorithms/fastfds"
	"hyfd/internal/algorithms/fdep"
	"hyfd/internal/algorithms/fdmine"
	"hyfd/internal/algorithms/fun"
	"hyfd/internal/algorithms/tane"
)

// Canonical algorithm names, matching the paper's spelling (Table 1).
const (
	AlgorithmHyFD     = "HyFD"
	AlgorithmTane     = "Tane"
	AlgorithmFun      = "Fun"
	AlgorithmFDMine   = "FD_Mine"
	AlgorithmDfd      = "Dfd"
	AlgorithmDepMiner = "Dep-Miner"
	AlgorithmFastFDs  = "FastFDs"
	AlgorithmFdep     = "Fdep"
)

// registry maps names to baseline implementations. HyFD itself is
// dispatched separately because it takes richer options.
var registry = map[string]algorithms.Algorithm{
	AlgorithmTane:     tane.New(),
	AlgorithmFun:      fun.New(),
	AlgorithmFDMine:   fdmine.New(),
	AlgorithmDfd:      dfd.New(1),
	AlgorithmDepMiner: depminer.New(),
	AlgorithmFastFDs:  fastfds.New(),
	AlgorithmFdep:     fdep.New(),
}

// Algorithms lists all available algorithm names: HyFD plus the seven
// baselines of the paper's evaluation, sorted with HyFD first and the rest
// in the paper's column order.
func Algorithms() []string {
	names := []string{AlgorithmHyFD}
	rest := make([]string, 0, len(registry))
	for name := range registry {
		rest = append(rest, name)
	}
	order := map[string]int{
		AlgorithmTane: 0, AlgorithmFun: 1, AlgorithmFDMine: 2, AlgorithmDfd: 3,
		AlgorithmDepMiner: 4, AlgorithmFastFDs: 5, AlgorithmFdep: 6,
	}
	sort.Slice(rest, func(i, j int) bool { return order[rest[i]] < order[rest[j]] })
	return append(names, rest...)
}
