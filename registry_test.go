package hyfd_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hyfd"
)

// TestRegistryRoundTrip drives every name reported by Algorithms() through
// DiscoverWithContext on a small relation: each registered algorithm must
// dispatch, complete, and agree with HyFD's FD set, and an unregistered
// name must fail with ErrUnknownAlgorithm.
func TestRegistryRoundTrip(t *testing.T) {
	rel, err := hyfd.ReadCSV("class", strings.NewReader(classCSV()), hyfd.CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := hyfd.DiscoverContext(context.Background(), rel, hyfd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range hyfd.Algorithms() {
		t.Run(name, func(t *testing.T) {
			got, err := hyfd.DiscoverWithContext(context.Background(), name, rel, hyfd.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Set.Equal(want.Set) {
				t.Fatalf("disagrees with HyFD:\nmissing: %v\nextra: %v",
					want.Set.Diff(got.Set), got.Set.Diff(want.Set))
			}
			if got.Stats == nil || got.Stats.FDCount != got.Set.Size() {
				t.Fatalf("stats = %+v", got.Stats)
			}
		})
	}
	t.Run("unknown", func(t *testing.T) {
		_, err := hyfd.DiscoverWithContext(context.Background(), "NoSuchAlgorithm", rel, hyfd.Options{})
		if !errors.Is(err, hyfd.ErrUnknownAlgorithm) {
			t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
		}
		_, err = hyfd.DiscoverWith("NoSuchAlgorithm", rel, hyfd.Options{})
		if !errors.Is(err, hyfd.ErrUnknownAlgorithm) {
			t.Fatalf("no-context err = %v, want ErrUnknownAlgorithm", err)
		}
	})
}
