package hyfd

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"hyfd/internal/afd"
	"hyfd/internal/algorithms"
	"hyfd/internal/core"
	"hyfd/internal/fd"
	"hyfd/internal/incremental"
	"hyfd/internal/metrics"
	"hyfd/internal/trace"
	"hyfd/internal/ucc"
)

// Mode selects the discovery workload of a Run request: exact functional
// dependencies, approximate functional dependencies (g3 error), unique
// column combinations, ranked top-k FD discovery, or incremental FD
// maintenance across dataset snapshots.
type Mode string

// The five discovery workloads.
const (
	ModeFD          Mode = "fd"
	ModeAFD         Mode = "afd"
	ModeUCC         Mode = "ucc"
	ModeRanked      Mode = "ranked"
	ModeIncremental Mode = "incremental"
)

// ErrUnknownMode is returned (wrapped) by Run and ParseMode when the mode
// string names none of the workloads; test with errors.Is.
var ErrUnknownMode = errors.New("unknown mode")

// Modes lists the valid mode names.
func Modes() []string {
	return []string{string(ModeFD), string(ModeAFD), string(ModeUCC), string(ModeRanked), string(ModeIncremental)}
}

// ParseMode normalizes a mode string ("" and "fd" are exact FD discovery;
// matching is case-insensitive). Unknown strings return an error wrapping
// ErrUnknownMode.
func ParseMode(s string) (Mode, error) {
	switch Mode(strings.ToLower(s)) {
	case "", ModeFD:
		return ModeFD, nil
	case ModeAFD:
		return ModeAFD, nil
	case ModeUCC:
		return ModeUCC, nil
	case ModeRanked:
		return ModeRanked, nil
	case ModeIncremental:
		return ModeIncremental, nil
	}
	return "", fmt.Errorf("hyfd: %w %q (available: %s)", ErrUnknownMode, s, strings.Join(Modes(), ", "))
}

// Request is the single request-struct entry point's input: one discovery
// job, fully described by data. It is the in-process twin of the hyfdd
// server's JSON JobRequest — every JSON field maps onto exactly one field
// here.
type Request struct {
	// Dataset is the prepared input (see Prepare). Exactly one of Dataset
	// and Relation must be set; a Dataset makes the run warm (preprocessing
	// already paid), and its baked-in null semantics apply regardless of
	// Options.NullSemantics.
	Dataset *Dataset
	// Relation is the raw input; Run preprocesses it first (a cold run).
	Relation *Relation
	// Algorithm names the discovery algorithm for ModeFD ("" = HyFD; see
	// Algorithms for the baselines). Modes afd and ucc have a single
	// built-in strategy: any non-empty Algorithm is rejected there with an
	// error wrapping ErrUnknownAlgorithm.
	Algorithm string
	// Mode selects the workload ("" = ModeFD).
	Mode Mode
	// MaxError is ModeAFD's g3 threshold ε ∈ [0,1); 0 reproduces exact
	// discovery. Ignored by the other modes.
	MaxError float64
	// TopK is ModeRanked's result budget: the run returns the k best-scoring
	// FDs and terminates as soon as that prefix is provably stable. 0 ranks
	// the complete cover. Ignored by the other modes.
	TopK int
	// MinScore is ModeRanked's score floor: results scoring below it are
	// dropped, and the run stops once no remaining candidate can reach it.
	// 0 disables the floor. Ignored by the other modes.
	MinScore float64
	// Delta is ModeIncremental's update batch, applied to Dataset (which
	// must be set; Relation is rejected) to advance the snapshot chain.
	Delta *Delta
	// Base is ModeIncremental's starting point: the exact minimal FD cover
	// of Dataset, typically the Set of a previous ModeFD or ModeIncremental
	// result over that snapshot.
	Base *FDSet
	// Options carries the per-run tuning shared by all modes: MaxLhsSize
	// bounds LHS/UCC sizes everywhere; Threads, EfficiencyThreshold,
	// MemoryBudgetBytes, Observer, and Metrics apply to the HyFD engine.
	Options Options
}

// Run executes one discovery request under the given context — the single
// entry point that subsumes the Discover* family. The context is honored in
// every mode: cancellation or a deadline aborts the run promptly with an
// error wrapping ctx.Err().
//
// The result carries FDs/Set (ModeFD), AFDs (ModeAFD), or UCCs (ModeUCC),
// plus Stats in every mode. Results are bit-for-bit deterministic for every
// thread count, and a warm run (Request.Dataset) returns results identical
// to a cold run (Request.Relation) on the same data.
func Run(ctx context.Context, req Request) (*Result, error) {
	mode, err := ParseMode(string(req.Mode))
	if err != nil {
		return nil, err
	}
	if req.Dataset == nil && req.Relation == nil {
		return nil, errors.New("hyfd: request needs a Dataset or a Relation")
	}
	if req.Dataset != nil && req.Relation != nil {
		return nil, errors.New("hyfd: request must set exactly one of Dataset and Relation")
	}
	switch mode {
	case ModeFD:
		return runFD(ctx, req)
	case ModeAFD:
		return runAFD(ctx, req)
	case ModeRanked:
		return runRanked(ctx, req)
	case ModeIncremental:
		return runIncremental(ctx, req)
	default:
		return runUCC(ctx, req)
	}
}

// runIncremental applies the request's Delta to the prepared Dataset and
// maintains the Base cover across the snapshot advance — re-validating only
// the candidates the delta can break instead of re-running discovery. The
// maintained Set (and the FD digest derived from it) is byte-identical to a
// cold full run over the new snapshot, at every thread count; Result.Dataset
// carries the new snapshot for the next increment.
func runIncremental(ctx context.Context, req Request) (*Result, error) {
	if req.Algorithm != "" {
		return nil, fmt.Errorf("hyfd: %w %q (mode %q has a single built-in strategy; leave Algorithm empty)",
			ErrUnknownAlgorithm, req.Algorithm, ModeIncremental)
	}
	if req.Dataset == nil {
		return nil, errors.New("hyfd: ModeIncremental needs a prepared Dataset (set Request.Dataset, not Relation)")
	}
	if req.Delta == nil {
		return nil, errors.New("hyfd: ModeIncremental needs Request.Delta")
	}
	if req.Base == nil {
		return nil, errors.New("hyfd: ModeIncremental needs Request.Base (the snapshot's exact FD cover)")
	}
	if req.Options.MaxLhsSize > 0 {
		// A truncated base cover does not determine the truncated cover of
		// the next snapshot: newly-minimal FDs can descend from candidates
		// beyond the bound. Maintenance therefore requires complete covers.
		return nil, errors.New("hyfd: ModeIncremental requires an unbounded cover (Options.MaxLhsSize must be 0)")
	}
	opts := req.Options
	observer := trace.Multi(opts.Observer, metrics.NewEngineMetrics(opts.Metrics).Observer())
	snap, err := req.Dataset.Apply(ctx, *req.Delta)
	if err != nil {
		return nil, err
	}
	prov := snap.Provenance()
	trace.Emit(observer, trace.DeltaApplied{
		Version:     snap.Version(),
		Inserts:     prov.Inserts,
		Deletes:     prov.Deletes,
		Rows:        snap.NumRows(),
		SharedAttrs: prov.SharedAttrs,
		Duration:    snap.PreprocessingTime(),
	})
	set, istats, err := incremental.Maintain(ctx, snap, req.Base, incremental.Config{
		Threads:  opts.Threads,
		Observer: observer,
	})
	if err != nil {
		return nil, err
	}
	threads := opts.Threads
	if threads <= 0 {
		threads = snap.Threads()
	}
	stats := &Stats{
		Rows:              snap.NumRows(),
		Cols:              snap.NumCols(),
		FDCount:           set.Size(),
		MaxLhs:            snap.NumCols(),
		Complete:          true,
		Warm:              true,
		Threads:           threads,
		Validations:       int64(istats.Checks),
		PreprocessingTime: snap.PreprocessingTime(),
		TotalTime:         snap.PreprocessingTime() + istats.Duration,
	}
	return &Result{FDs: set.All(), Set: set, Dataset: snap, Stats: stats}, nil
}

// runFD dispatches exact FD discovery: the HyFD engine or a named baseline,
// cold (Relation) or warm (Dataset).
func runFD(ctx context.Context, req Request) (*Result, error) {
	opts := req.Options
	algorithm := req.Algorithm
	if algorithm == "" {
		algorithm = AlgorithmHyFD
	}
	if algorithm == AlgorithmHyFD {
		var (
			set   *FDSet
			stats *Stats
			err   error
		)
		if req.Dataset != nil {
			set, stats, err = core.DiscoverDataset(ctx, req.Dataset, core.Config{
				EfficiencyThreshold: opts.EfficiencyThreshold,
				Threads:             opts.Threads,
				MaxLhsSize:          opts.MaxLhsSize,
				MemoryBudgetBytes:   opts.MemoryBudgetBytes,
				Observer:            opts.Observer,
				Metrics:             opts.Metrics,
			})
		} else {
			set, stats, err = core.Discover(ctx, req.Relation, core.Config{
				NullSemantics:       opts.NullSemantics,
				EfficiencyThreshold: opts.EfficiencyThreshold,
				Threads:             opts.Threads,
				MaxLhsSize:          opts.MaxLhsSize,
				MemoryBudgetBytes:   opts.MemoryBudgetBytes,
				Observer:            opts.Observer,
				Metrics:             opts.Metrics,
			})
		}
		if err != nil {
			return nil, err
		}
		return &Result{FDs: set.All(), Set: set, Stats: stats}, nil
	}
	alg, ok := registry[algorithm]
	if !ok {
		return nil, fmt.Errorf("hyfd: %w %q (available: %v)", ErrUnknownAlgorithm, algorithm, Algorithms())
	}
	start := time.Now()
	var (
		set *fd.Set
		err error
	)
	if req.Dataset != nil {
		set, err = alg.Discover(ctx, req.Dataset, algorithms.Config{MaxLhsSize: opts.MaxLhsSize})
		if err != nil {
			return nil, err
		}
		return baselineResult(set, req.Dataset.NumRows(), req.Dataset.NumCols(), opts.MaxLhsSize, true, time.Since(start)), nil
	}
	set, err = algorithms.DiscoverRelation(ctx, alg, req.Relation, algorithms.Config{
		NullSemantics: opts.NullSemantics,
		MaxLhsSize:    opts.MaxLhsSize,
	})
	if err != nil {
		return nil, err
	}
	return baselineResult(set, req.Relation.NumRows(), req.Relation.NumCols(), opts.MaxLhsSize, false, time.Since(start)), nil
}

// runRanked dispatches ranked top-k FD discovery. Only the HyFD engine
// supports the ranked cut, so a non-empty Algorithm is rejected. The result
// carries Ranked (score order, ranks assigned) plus Stats; Stats.Complete
// is false when the run cut the lattice early — the results are still the
// exact top-k of the full cover.
func runRanked(ctx context.Context, req Request) (*Result, error) {
	if req.Algorithm != "" {
		return nil, fmt.Errorf("hyfd: %w %q (mode %q has a single built-in strategy; leave Algorithm empty)",
			ErrUnknownAlgorithm, req.Algorithm, ModeRanked)
	}
	if req.TopK < 0 {
		return nil, fmt.Errorf("hyfd: invalid TopK %d: must be >= 0", req.TopK)
	}
	if req.MinScore < 0 {
		return nil, fmt.Errorf("hyfd: invalid MinScore %g: must be >= 0", req.MinScore)
	}
	opts := req.Options
	cfg := core.Config{
		NullSemantics:       opts.NullSemantics,
		EfficiencyThreshold: opts.EfficiencyThreshold,
		Threads:             opts.Threads,
		MaxLhsSize:          opts.MaxLhsSize,
		MemoryBudgetBytes:   opts.MemoryBudgetBytes,
		Observer:            opts.Observer,
		Metrics:             opts.Metrics,
	}
	var (
		ranked []RankedFD
		stats  *Stats
		err    error
	)
	if req.Dataset != nil {
		ranked, stats, err = core.DiscoverRankedDataset(ctx, req.Dataset, cfg, req.TopK, req.MinScore)
	} else {
		ranked, stats, err = core.DiscoverRanked(ctx, req.Relation, cfg, req.TopK, req.MinScore)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Ranked: ranked, Stats: stats}, nil
}

// runAFD dispatches approximate FD discovery (g3 ≤ Request.MaxError).
func runAFD(ctx context.Context, req Request) (*Result, error) {
	if req.Algorithm != "" {
		return nil, fmt.Errorf("hyfd: %w %q (mode %q has a single built-in strategy; leave Algorithm empty)",
			ErrUnknownAlgorithm, req.Algorithm, ModeAFD)
	}
	ds, warm, err := requestDataset(ctx, req)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	afds, err := afd.DiscoverDatasetContext(ctx, ds, afd.Options{
		MaxError: req.MaxError,
		MaxLhs:   req.Options.MaxLhsSize,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		AFDs:  afds,
		Stats: auxiliaryStats(ds, req.Options.MaxLhsSize, warm, time.Since(start)),
	}, nil
}

// runUCC dispatches unique column combination discovery.
func runUCC(ctx context.Context, req Request) (*Result, error) {
	if req.Algorithm != "" {
		return nil, fmt.Errorf("hyfd: %w %q (mode %q has a single built-in strategy; leave Algorithm empty)",
			ErrUnknownAlgorithm, req.Algorithm, ModeUCC)
	}
	ds, warm, err := requestDataset(ctx, req)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	uccs, err := ucc.DiscoverDatasetContext(ctx, ds, req.Options.MaxLhsSize)
	if err != nil {
		return nil, err
	}
	return &Result{
		UCCs:  uccs,
		Stats: auxiliaryStats(ds, req.Options.MaxLhsSize, warm, time.Since(start)),
	}, nil
}

// requestDataset resolves the request's input to a prepared Dataset,
// preparing the Relation on the spot for cold runs; warm reports whether the
// caller supplied the Dataset (and so excluded preprocessing from the run).
func requestDataset(ctx context.Context, req Request) (*Dataset, bool, error) {
	if req.Dataset != nil {
		return req.Dataset, true, nil
	}
	ds, err := Prepare(ctx, req.Relation, PrepareOptions{
		NullSemantics: req.Options.NullSemantics,
		Threads:       req.Options.Threads,
		Observer:      req.Options.Observer,
		Metrics:       req.Options.Metrics,
	})
	if err != nil {
		return nil, false, err
	}
	return ds, false, nil
}

// auxiliaryStats assembles the Stats of an afd/ucc run: the dimensional and
// outcome fields, without the HyFD engine's per-phase telemetry.
func auxiliaryStats(ds *Dataset, maxLhsSize int, warm bool, total time.Duration) *Stats {
	stats := &Stats{
		Rows:      ds.NumRows(),
		Cols:      ds.NumCols(),
		MaxLhs:    ds.NumCols(),
		Complete:  true,
		Warm:      warm,
		TotalTime: total,
	}
	if !warm {
		stats.PreprocessingTime = ds.PreprocessingTime()
	}
	if maxLhsSize > 0 {
		stats.MaxLhs = maxLhsSize
		stats.Complete = false
	}
	return stats
}

// baselineResult assembles the Stats/Result pair of a baseline run; the
// baselines don't report the engine's per-phase telemetry, so only the
// dimensional and outcome fields are populated.
func baselineResult(set *FDSet, rows, cols, maxLhsSize int, warm bool, total time.Duration) *Result {
	stats := &Stats{
		Rows:      rows,
		Cols:      cols,
		FDCount:   set.Size(),
		MaxLhs:    cols,
		Complete:  true,
		Warm:      warm,
		TotalTime: total,
	}
	if maxLhsSize > 0 {
		stats.MaxLhs = maxLhsSize
		stats.Complete = false
	}
	return &Result{FDs: set.All(), Set: set, Stats: stats}
}
